package tuner

import (
	"testing"

	"power5prio/internal/experiments"
	"power5prio/internal/microbench"
)

func TestHillClimbFindsUnimodalPeak(t *testing.T) {
	evals := 0
	eval := func(d int) float64 {
		evals++
		return -float64((d - 3) * (d - 3)) // peak at 3
	}
	r, err := HillClimb(eval, 0, -5, 5)
	if err != nil {
		t.Fatal(err)
	}
	if r.BestDiff != 3 {
		t.Errorf("BestDiff = %d, want 3", r.BestDiff)
	}
	if r.Evals != evals {
		t.Errorf("Evals = %d, actual calls %d (memoization broken)", r.Evals, evals)
	}
	if r.Evals > 11 {
		t.Errorf("evaluated %d points; hill climbing should not scan everything twice", r.Evals)
	}
}

func TestHillClimbRespectsBounds(t *testing.T) {
	eval := func(d int) float64 { return float64(d) } // monotone: best at hi
	r, err := HillClimb(eval, 0, -2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if r.BestDiff != 4 {
		t.Errorf("BestDiff = %d, want boundary 4", r.BestDiff)
	}
}

func TestHillClimbErrors(t *testing.T) {
	eval := func(d int) float64 { return 0 }
	if _, err := HillClimb(eval, 0, 3, 1); err == nil {
		t.Error("accepted empty range")
	}
	if _, err := HillClimb(eval, 9, -5, 5); err == nil {
		t.Error("accepted start outside range")
	}
}

func TestHillClimbMemoizes(t *testing.T) {
	calls := map[int]int{}
	eval := func(d int) float64 {
		calls[d]++
		return 0 // flat: immediate stop
	}
	if _, err := HillClimb(eval, 0, -5, 5); err != nil {
		t.Fatal(err)
	}
	for d, n := range calls {
		if n > 1 {
			t.Errorf("diff %d evaluated %d times", d, n)
		}
	}
}

// TestTunePairFindsPositiveDiff: for a high-IPC thread paired with a
// memory-bound thread, the tuner must discover that prioritizing the
// high-IPC thread raises total throughput (the paper's Section 5.3 rule).
func TestTunePairFindsPositiveDiff(t *testing.T) {
	if testing.Short() {
		t.Skip("tuning runs simulations")
	}
	h := experiments.Quick()
	h.IterScale = 0.12
	r, err := TunePair(h, microbench.LdIntL1, microbench.LdIntMem)
	if err != nil {
		t.Fatal(err)
	}
	if r.BestDiff <= 0 {
		t.Errorf("BestDiff = %d, want positive (prioritize the high-IPC thread)", r.BestDiff)
	}
}
