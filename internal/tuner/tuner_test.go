package tuner

import (
	"context"
	"errors"
	"testing"

	"power5prio/internal/experiments"
	"power5prio/internal/microbench"
)

// pointwise lifts a per-diff function into the batch Objective shape.
func pointwise(f func(d int) float64) Objective {
	return func(diffs []int) ([]float64, error) {
		out := make([]float64, len(diffs))
		for i, d := range diffs {
			out[i] = f(d)
		}
		return out, nil
	}
}

func TestHillClimbFindsUnimodalPeak(t *testing.T) {
	evals := 0
	eval := pointwise(func(d int) float64 {
		evals++
		return -float64((d - 3) * (d - 3)) // peak at 3
	})
	r, err := HillClimb(eval, 0, -5, 5)
	if err != nil {
		t.Fatal(err)
	}
	if r.BestDiff != 3 {
		t.Errorf("BestDiff = %d, want 3", r.BestDiff)
	}
	if r.Evals != evals {
		t.Errorf("Evals = %d, actual calls %d (memoization broken)", r.Evals, evals)
	}
	if r.Evals > 11 {
		t.Errorf("evaluated %d points; hill climbing should not scan everything twice", r.Evals)
	}
}

func TestHillClimbRespectsBounds(t *testing.T) {
	eval := pointwise(func(d int) float64 { return float64(d) }) // monotone: best at hi
	r, err := HillClimb(eval, 0, -2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if r.BestDiff != 4 {
		t.Errorf("BestDiff = %d, want boundary 4", r.BestDiff)
	}
}

func TestHillClimbErrors(t *testing.T) {
	eval := pointwise(func(d int) float64 { return 0 })
	if _, err := HillClimb(eval, 0, 3, 1); err == nil {
		t.Error("accepted empty range")
	}
	if _, err := HillClimb(eval, 9, -5, 5); err == nil {
		t.Error("accepted start outside range")
	}

	// Objective failures (e.g. a cancelled measurement batch) abort the
	// climb instead of being scored as zero.
	boom := errors.New("cancelled")
	failing := Objective(func(diffs []int) ([]float64, error) { return nil, boom })
	if _, err := HillClimb(failing, 0, -5, 5); !errors.Is(err, boom) {
		t.Errorf("objective error lost: %v", err)
	}
	short := Objective(func(diffs []int) ([]float64, error) { return make([]float64, 0), nil })
	if _, err := HillClimb(short, 0, -5, 5); err == nil {
		t.Error("accepted an objective returning the wrong number of values")
	}
}

func TestHillClimbMemoizes(t *testing.T) {
	calls := map[int]int{}
	eval := pointwise(func(d int) float64 {
		calls[d]++
		return 0 // flat: immediate stop
	})
	if _, err := HillClimb(eval, 0, -5, 5); err != nil {
		t.Fatal(err)
	}
	for d, n := range calls {
		if n > 1 {
			t.Errorf("diff %d evaluated %d times", d, n)
		}
	}
}

// TestHillClimbBatchesNeighbors: both neighbours of a step arrive in one
// objective call, so measurement backends can run them concurrently.
func TestHillClimbBatchesNeighbors(t *testing.T) {
	var sizes []int
	eval := Objective(func(diffs []int) ([]float64, error) {
		sizes = append(sizes, len(diffs))
		out := make([]float64, len(diffs))
		for i, d := range diffs {
			out[i] = -float64(d * d) // peak at 0: one step, no movement
		}
		return out, nil
	})
	if _, err := HillClimb(eval, 0, -5, 5); err != nil {
		t.Fatal(err)
	}
	// Call 1: the start point. Call 2: both neighbours together.
	if len(sizes) != 2 || sizes[0] != 1 || sizes[1] != 2 {
		t.Errorf("objective call sizes %v, want [1 2]", sizes)
	}
}

// TestTunePairFindsPositiveDiff: for a high-IPC thread paired with a
// memory-bound thread, the tuner must discover that prioritizing the
// high-IPC thread raises total throughput (the paper's Section 5.3 rule).
func TestTunePairFindsPositiveDiff(t *testing.T) {
	if testing.Short() {
		t.Skip("tuning runs simulations")
	}
	h := experiments.Quick()
	h.IterScale = 0.12
	r, err := TunePair(context.Background(), h, microbench.LdIntL1, microbench.LdIntMem)
	if err != nil {
		t.Fatal(err)
	}
	if r.BestDiff <= 0 {
		t.Errorf("BestDiff = %d, want positive (prioritize the high-IPC thread)", r.BestDiff)
	}
}

// TestTunePairCancellation: a cancelled context aborts the climb with the
// context error rather than returning a bogus optimum.
func TestTunePairCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	h := experiments.Quick()
	h.IterScale = 0.02
	if _, err := TunePair(ctx, h, microbench.LdIntL1, microbench.LdIntMem); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled TunePair returned %v", err)
	}
}
