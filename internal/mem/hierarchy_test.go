package mem

import "testing"

// tinyConfig returns a hierarchy small enough to exercise every level.
func tinyConfig() Config {
	cfg := DefaultConfig()
	cfg.L1D = CacheConfig{SizeBytes: 1 << 10, Ways: 2, LineBytes: 128} // 1KB
	cfg.L2 = CacheConfig{SizeBytes: 4 << 10, Ways: 4, LineBytes: 128}  // 4KB
	cfg.L3 = CacheConfig{SizeBytes: 16 << 10, Ways: 4, LineBytes: 128} // 16KB
	cfg.TLBEntries = 16
	cfg.TLBWays = 4
	return cfg
}

func TestHitLevelString(t *testing.T) {
	for l, want := range map[HitLevel]string{HitL1: "L1", HitL2: "L2", HitL3: "L3", HitMem: "MEM"} {
		if l.String() != want {
			t.Errorf("%d.String() = %q, want %q", l, l.String(), want)
		}
	}
	if HitLevel(9).String() != "level(9)" {
		t.Errorf("invalid level = %q", HitLevel(9).String())
	}
}

func TestDefaultConfigValid(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("DefaultConfig invalid: %v", err)
	}
}

func TestConfigValidateRejects(t *testing.T) {
	mut := []func(*Config){
		func(c *Config) { c.Cores = 0 },
		func(c *Config) { c.L1D.Ways = 0 },
		func(c *Config) { c.L2.SizeBytes = 0 },
		func(c *Config) { c.L3.LineBytes = 0 },
		func(c *Config) { c.MemChannels = 0 },
		func(c *Config) { c.TLBEntries = 0 },
		func(c *Config) { c.TLBEntries = 10; c.TLBWays = 4 },
	}
	for i, m := range mut {
		cfg := DefaultConfig()
		m(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestHierarchyLevelProgression(t *testing.T) {
	h := NewHierarchy(tinyConfig())
	const addr = 0x100000
	r := h.Load(0, 0, addr, 0)
	if r.Level != HitMem {
		t.Fatalf("first access level = %v, want MEM", r.Level)
	}
	if !r.TLBMiss {
		t.Error("first access should miss TLB")
	}
	r = h.Load(0, 0, addr, r.Done)
	if r.Level != HitL1 {
		t.Fatalf("second access level = %v, want L1", r.Level)
	}
	if r.TLBMiss {
		t.Error("second access should hit TLB")
	}
}

func TestHierarchyL2HitAfterL1Eviction(t *testing.T) {
	cfg := tinyConfig()
	h := NewHierarchy(cfg)
	// Walk a footprint larger than L1 (1KB) but within L2 (4KB).
	now := uint64(0)
	for pass := 0; pass < 3; pass++ {
		for a := uint64(0); a < 2<<10; a += 128 {
			r := h.Load(0, 0, a, now)
			now = r.Done
		}
	}
	s := h.StatsFor(0, 0)
	if s.Hits[HitL2] == 0 {
		t.Errorf("expected L2 hits walking a 2KB footprint through a 1KB L1; stats %+v", s)
	}
	if s.Hits[HitMem] > 16 {
		t.Errorf("unexpected repeated memory accesses: %+v", s)
	}
}

func TestHierarchyLatencies(t *testing.T) {
	cfg := tinyConfig()
	h := NewHierarchy(cfg)
	const addr = 0x200000
	h.Load(0, 0, addr, 0)         // install everywhere
	r := h.Load(0, 0, addr, 1000) // L1 hit
	if got := r.Done - 1000; got != cfg.LatL1 {
		t.Errorf("L1 latency = %d, want %d", got, cfg.LatL1)
	}
	// Evict from L1 by filling its set with conflicting lines.
	setStride := uint64(cfg.L1D.Sets() * cfg.L1D.LineBytes)
	for i := uint64(1); i <= uint64(cfg.L1D.Ways); i++ {
		h.Load(0, 0, addr+i*setStride, 2000)
	}
	r = h.Load(0, 0, addr, 3000)
	if r.Level != HitL2 {
		t.Fatalf("after L1 eviction, level = %v, want L2", r.Level)
	}
	if got := r.Done - 3000; got != cfg.LatL2 {
		t.Errorf("L2 latency = %d, want %d", got, cfg.LatL2)
	}
}

func TestHierarchyDRAMSingleThreadSerializes(t *testing.T) {
	cfg := tinyConfig()
	cfg.MemChannels = 1
	h := NewHierarchy(cfg)
	// A burst of misses from one thread is served at channel rate: the
	// k-th completes no earlier than k service slots in.
	var last uint64
	for k := uint64(0); k < 5; k++ {
		r := h.Load(0, 0, 0x10000000+k*0x10000, 0)
		last = r.Done
	}
	if want := 4*cfg.LatMem + cfg.LatMem; last < want {
		t.Errorf("5th burst miss done at %d, want >= %d (serialized at channel rate)", last, want)
	}
}

// TestHierarchyDRAMFairSharing: with equal weights and concurrent demand
// from both threads, each thread's stream is served at half rate.
func TestHierarchyDRAMFairSharing(t *testing.T) {
	cfg := tinyConfig()
	cfg.MemChannels = 1
	h := NewHierarchy(cfg)
	var done0, done1 uint64
	for k := uint64(0); k < 6; k++ {
		done0 = h.Load(0, 0, 0x10000000+k*0x10000, k).Done
		done1 = h.Load(0, 1, 0x20000000+k*0x10000, k).Done
	}
	// Six requests per thread at half rate: ~ 6 * 2*LatMem each.
	if min := 9 * cfg.LatMem; done0 < min || done1 < min {
		t.Errorf("contended streams finished at (%d,%d), want both >= %d (half rate)", done0, done1, min)
	}
}

// TestHierarchyDRAMWeightedSharing: a heavily weighted thread keeps
// near-full channel rate while the other is pushed out.
func TestHierarchyDRAMWeightedSharing(t *testing.T) {
	cfg := tinyConfig()
	h := NewHierarchy(cfg)
	h.SetMemWeight(0, 0, 63.0/64)
	h.SetMemWeight(0, 1, 1.0/64)
	var doneHi, doneLo uint64
	for k := uint64(0); k < 4; k++ {
		doneHi = h.Load(0, 0, 0x10000000+k*0x10000, k).Done
		doneLo = h.Load(0, 1, 0x20000000+k*0x10000, k).Done
	}
	if doneLo < 10*doneHi {
		t.Errorf("weighted sharing too weak: hi done %d, lo done %d", doneHi, doneLo)
	}
}

func TestHierarchyDRAMTwoChannelsFaster(t *testing.T) {
	run := func(channels int) uint64 {
		cfg := tinyConfig()
		cfg.MemChannels = channels
		h := NewHierarchy(cfg)
		var done uint64
		for k := uint64(0); k < 8; k++ {
			done = h.Load(0, 0, 0x10000000+k*0x10000, 0).Done
			h.Load(0, 1, 0x20000000+k*0x10000, 0)
		}
		return done
	}
	if one, two := run(1), run(2); two >= one {
		t.Errorf("two channels (%d) not faster than one (%d)", two, one)
	}
}

func TestHierarchyPerCoreL1Isolation(t *testing.T) {
	h := NewHierarchy(tinyConfig())
	const addr = 0x300000
	h.Load(0, 0, addr, 0)
	// Other core: must not hit core 0's L1, but hits shared L2.
	r := h.Load(1, 0, addr, 500)
	if r.Level != HitL2 {
		t.Errorf("cross-core access level = %v, want L2 (shared)", r.Level)
	}
}

func TestHierarchySameCoreThreadsShareL1(t *testing.T) {
	h := NewHierarchy(tinyConfig())
	const addr = 0x400000
	h.Load(0, 0, addr, 0)
	r := h.Load(0, 1, addr, 500)
	if r.Level != HitL1 {
		t.Errorf("sibling-thread access level = %v, want L1 (shared per core)", r.Level)
	}
}

func TestHierarchyStoreAllocatesWithoutChannel(t *testing.T) {
	cfg := tinyConfig()
	h := NewHierarchy(cfg)
	r := h.Store(0, 0, 0x500000, 0)
	if r.Level != HitMem {
		t.Fatalf("store miss level = %v, want MEM", r.Level)
	}
	// A racing load on the channel must not queue behind the store.
	r2 := h.Load(0, 0, 0x600000, 0)
	if r2.Done > cfg.LatMem+cfg.TLBWalkLat {
		t.Errorf("load queued behind store: done %d", r2.Done)
	}
	// The stored line is now resident.
	r3 := h.Load(0, 0, 0x500000, 1000)
	if r3.Level != HitL1 {
		t.Errorf("post-store load level = %v, want L1", r3.Level)
	}
}

func TestHierarchyTLBWalkPenalty(t *testing.T) {
	cfg := tinyConfig()
	h := NewHierarchy(cfg)
	const addr = 0x700000
	h.Load(0, 0, addr, 0)
	// New page, line resident in no cache: forces both TLB walk and miss.
	r := h.Load(0, 0, addr, 10000) // same page: TLB hit, L1 hit
	if r.TLBMiss {
		t.Error("same-page access missed TLB")
	}
	r = h.Load(0, 0, addr+uint64(cfg.PageBytes)*1024, 20000)
	if !r.TLBMiss {
		t.Error("far page should miss TLB")
	}
	if r.Done-20000 <= cfg.LatMem {
		t.Errorf("TLB walk not charged: latency %d", r.Done-20000)
	}
}

func TestHierarchyStats(t *testing.T) {
	h := NewHierarchy(tinyConfig())
	h.Load(0, 0, 0x100, 0)
	h.Load(0, 0, 0x100, 500)
	s := h.StatsFor(0, 0)
	if s.Accesses != 2 || s.Hits[HitMem] != 1 || s.Hits[HitL1] != 1 {
		t.Errorf("stats = %+v, want 2 accesses, 1 MEM, 1 L1", s)
	}
	if got := h.StatsFor(1, 1); got.Accesses != 0 {
		t.Errorf("untouched context has accesses: %+v", got)
	}
}

func TestHierarchyReset(t *testing.T) {
	h := NewHierarchy(tinyConfig())
	h.Load(0, 0, 0x100, 0)
	h.Reset()
	r := h.Load(0, 0, 0x100, 10000)
	if r.Level != HitMem {
		t.Errorf("post-Reset access level = %v, want MEM", r.Level)
	}
}

func TestNewHierarchyPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewHierarchy did not panic")
		}
	}()
	NewHierarchy(Config{})
}
