package mem

import (
	"testing"
	"testing/quick"
)

func smallCache() *Cache {
	// 4 sets, 2 ways, 128B lines -> 1KB
	return NewCache(CacheConfig{SizeBytes: 1024, Ways: 2, LineBytes: 128})
}

func TestCacheConfigSets(t *testing.T) {
	c := CacheConfig{SizeBytes: 32 << 10, Ways: 4, LineBytes: 128}
	if got := c.Sets(); got != 64 {
		t.Errorf("Sets() = %d, want 64", got)
	}
}

func TestCacheConfigValidate(t *testing.T) {
	bad := []CacheConfig{
		{SizeBytes: 0, Ways: 2, LineBytes: 128},
		{SizeBytes: 1024, Ways: 0, LineBytes: 128},
		{SizeBytes: 1024, Ways: 2, LineBytes: 0},
		{SizeBytes: 1000, Ways: 2, LineBytes: 128}, // not divisible
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("Validate accepted %+v", cfg)
		}
	}
	good := CacheConfig{SizeBytes: 1024, Ways: 2, LineBytes: 128}
	if err := good.Validate(); err != nil {
		t.Errorf("Validate rejected %+v: %v", good, err)
	}
}

func TestNewCachePanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewCache did not panic")
		}
	}()
	NewCache(CacheConfig{})
}

func TestCacheMissThenHit(t *testing.T) {
	c := smallCache()
	if c.Access(0x1000) {
		t.Fatal("empty cache hit")
	}
	c.Fill(0x1000)
	if !c.Access(0x1000) {
		t.Fatal("filled line missed")
	}
	// Same line, different offset.
	if !c.Access(0x1000 + 64) {
		t.Fatal("same-line access missed")
	}
	// Different line.
	if c.Access(0x1000 + 128) {
		t.Fatal("adjacent line hit without fill")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := smallCache() // 2 ways
	// Three lines mapping to the same set: stride = sets*line = 4*128.
	a, b, d := uint64(0), uint64(512), uint64(1024)
	c.Fill(a)
	c.Fill(b)
	c.Access(a) // make a MRU
	ev, was := c.Fill(d)
	if !was || ev != b {
		t.Errorf("evicted (%#x,%v), want (%#x,true)", ev, was, b)
	}
	if !c.Access(a) || !c.Access(d) || c.Access(b) {
		t.Error("post-eviction residency wrong: want a,d resident, b evicted")
	}
}

func TestCacheFillPrefersInvalidWay(t *testing.T) {
	c := smallCache()
	c.Fill(0)
	if _, was := c.Fill(512); was {
		t.Error("fill into set with a free way reported an eviction")
	}
}

func TestCacheInvalidate(t *testing.T) {
	c := smallCache()
	c.Fill(0x2000)
	c.Invalidate(0x2000)
	if c.Access(0x2000) {
		t.Error("invalidated line still hits")
	}
	c.Invalidate(0x4000) // absent: must not panic
}

func TestCacheLookupDoesNotTouchLRU(t *testing.T) {
	c := smallCache()
	a, b, d := uint64(0), uint64(512), uint64(1024)
	c.Fill(a)
	c.Fill(b)
	if !c.Lookup(a) {
		t.Fatal("Lookup missed resident line")
	}
	// Lookup(a) must not have promoted a: a is still LRU, so filling d
	// evicts a, not b.
	ev, _ := c.Fill(d)
	if ev != a {
		t.Errorf("evicted %#x, want %#x (Lookup must not update recency)", ev, a)
	}
}

func TestCacheReset(t *testing.T) {
	c := smallCache()
	c.Fill(0)
	c.Reset()
	if c.Access(0) {
		t.Error("line survived Reset")
	}
}

// Property: after filling a line, it hits until ways distinct conflicting
// lines are filled on top of it.
func TestCacheConflictProperty(t *testing.T) {
	f := func(setRaw uint8) bool {
		c := smallCache()
		setStride := uint64(4 * 128)
		base := uint64(setRaw%4) * 128
		c.Fill(base)
		if !c.Access(base) {
			return false
		}
		// One conflicting fill: still resident (2 ways).
		c.Fill(base + setStride)
		if !c.Access(base) {
			return false
		}
		// Touch the conflicting line so base becomes LRU, then a second
		// conflicting fill must evict base.
		c.Access(base + setStride)
		c.Fill(base + 2*setStride)
		return !c.Lookup(base)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTLBHitMiss(t *testing.T) {
	tlb := NewTLB(16, 4, 4096)
	if tlb.Access(0x1234) {
		t.Fatal("empty TLB hit")
	}
	if !tlb.Access(0x1FFF) {
		t.Fatal("same page missed after walk-install")
	}
	if tlb.Access(0x2FFF) {
		t.Fatal("different page hit")
	}
}

func TestTLBCapacity(t *testing.T) {
	tlb := NewTLB(16, 4, 4096)
	// Fill 16 pages, then touch 16 more mapping over them; first page
	// should eventually be evicted.
	for p := uint64(0); p < 32; p++ {
		tlb.Access(p * 4096 * 4) // stride across sets to force conflicts
	}
	hits := 0
	for p := uint64(0); p < 4; p++ {
		if tlb.Access(p * 4096 * 4) {
			hits++
		}
	}
	if hits == 4 {
		t.Error("TLB retained all early pages beyond capacity")
	}
}

func TestTLBPanicsOnNonPow2Page(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewTLB accepted non-power-of-two page size")
		}
	}()
	NewTLB(16, 4, 3000)
}
