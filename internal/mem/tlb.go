package mem

// TLB is a set-associative translation lookaside buffer over fixed-size
// pages. POWER5 has a 1024-entry TLB per core, shared by both hardware
// threads; a miss triggers a hardware table walk.
type TLB struct {
	pageBits uint
	cache    *Cache
}

// NewTLB builds a TLB with the given number of entries, associativity and
// page size (which must be a power of two).
func NewTLB(entries, ways int, pageBytes int) *TLB {
	bits := uint(0)
	for 1<<bits < pageBytes {
		bits++
	}
	if 1<<bits != pageBytes {
		panic("mem: TLB page size must be a power of two")
	}
	// Reuse the cache structure: one "line" per page entry.
	c := NewCache(CacheConfig{SizeBytes: entries, Ways: ways, LineBytes: 1})
	return &TLB{pageBits: bits, cache: c}
}

// Access translates addr, reports whether it hit, and installs the entry on
// a miss (hardware-walked TLB).
func (t *TLB) Access(addr uint64) bool {
	page := addr >> t.pageBits
	if t.cache.Access(page) {
		return true
	}
	t.cache.Fill(page)
	return false
}

// Reset empties the TLB.
func (t *TLB) Reset() { t.cache.Reset() }
