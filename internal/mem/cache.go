// Package mem models the POWER5 memory hierarchy the paper's workloads
// exercise: per-core L1 data caches, a chip-shared L2 and victim-style L3,
// a per-core D-TLB, and a DRAM channel model with limited concurrency.
//
// The model is a latency model, not a functional memory: it tracks which
// lines are resident where and when an access completes, not data values.
package mem

import "fmt"

// CacheConfig sizes one cache level.
type CacheConfig struct {
	SizeBytes int // total capacity
	Ways      int // associativity
	LineBytes int // line size
}

// Sets returns the number of sets implied by the configuration.
func (c CacheConfig) Sets() int {
	lines := c.SizeBytes / c.LineBytes
	return lines / c.Ways
}

// Validate checks the configuration is internally consistent.
func (c CacheConfig) Validate() error {
	if c.SizeBytes <= 0 || c.Ways <= 0 || c.LineBytes <= 0 {
		return fmt.Errorf("mem: cache config fields must be positive: %+v", c)
	}
	if c.SizeBytes%(c.Ways*c.LineBytes) != 0 {
		return fmt.Errorf("mem: size %d not divisible by ways*line (%d*%d)", c.SizeBytes, c.Ways, c.LineBytes)
	}
	if c.Sets() == 0 {
		return fmt.Errorf("mem: config %+v yields zero sets", c)
	}
	return nil
}

// Cache is a set-associative cache with true-LRU replacement. It tracks
// only tags; a global access counter provides recency ordering.
type Cache struct {
	cfg   CacheConfig
	sets  int
	tags  []uint64 // sets*ways; tag = line address (addr/LineBytes)
	valid []bool
	used  []uint64 // recency stamps
	tick  uint64
}

// NewCache returns an empty cache. It panics on an invalid configuration;
// configurations come from code, not user input.
func NewCache(cfg CacheConfig) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	sets := cfg.Sets()
	n := sets * cfg.Ways
	return &Cache{
		cfg:   cfg,
		sets:  sets,
		tags:  make([]uint64, n),
		valid: make([]bool, n),
		used:  make([]uint64, n),
	}
}

// Config returns the cache geometry.
func (c *Cache) Config() CacheConfig { return c.cfg }

func (c *Cache) set(addr uint64) (base int, line uint64) {
	line = addr / uint64(c.cfg.LineBytes)
	return int(line%uint64(c.sets)) * c.cfg.Ways, line
}

// Lookup probes for addr without modifying replacement state or contents.
func (c *Cache) Lookup(addr uint64) bool {
	base, line := c.set(addr)
	for w := 0; w < c.cfg.Ways; w++ {
		if c.valid[base+w] && c.tags[base+w] == line {
			return true
		}
	}
	return false
}

// Access probes for addr, updating LRU state on a hit. It reports whether
// the line was resident. On a miss the contents are unchanged; call Fill.
func (c *Cache) Access(addr uint64) bool {
	base, line := c.set(addr)
	for w := 0; w < c.cfg.Ways; w++ {
		i := base + w
		if c.valid[i] && c.tags[i] == line {
			c.tick++
			c.used[i] = c.tick
			return true
		}
	}
	return false
}

// Fill inserts the line containing addr, evicting the LRU way if needed.
// It returns the evicted line address and whether an eviction happened.
func (c *Cache) Fill(addr uint64) (evicted uint64, wasEvicted bool) {
	base, line := c.set(addr)
	c.tick++
	// Prefer an invalid way; otherwise evict LRU.
	victim := base
	var lru uint64 = ^uint64(0)
	for w := 0; w < c.cfg.Ways; w++ {
		i := base + w
		if !c.valid[i] {
			victim = i
			lru = 0
			break
		}
		if c.used[i] < lru {
			lru = c.used[i]
			victim = i
		}
	}
	if c.valid[victim] {
		evicted = c.tags[victim] * uint64(c.cfg.LineBytes)
		wasEvicted = true
	}
	c.tags[victim] = line
	c.valid[victim] = true
	c.used[victim] = c.tick
	return evicted, wasEvicted
}

// Invalidate removes the line containing addr if present.
func (c *Cache) Invalidate(addr uint64) {
	base, line := c.set(addr)
	for w := 0; w < c.cfg.Ways; w++ {
		i := base + w
		if c.valid[i] && c.tags[i] == line {
			c.valid[i] = false
			return
		}
	}
}

// Reset empties the cache.
func (c *Cache) Reset() {
	for i := range c.valid {
		c.valid[i] = false
	}
	c.tick = 0
}
