package mem

import "fmt"

// HitLevel identifies where an access was satisfied.
type HitLevel uint8

// Hit levels, nearest to farthest.
const (
	HitL1 HitLevel = iota
	HitL2
	HitL3
	HitMem

	HitLevelCount = iota
)

var hitNames = [HitLevelCount]string{"L1", "L2", "L3", "MEM"}

// String returns the level name.
func (h HitLevel) String() string {
	if int(h) < len(hitNames) {
		return hitNames[h]
	}
	return fmt.Sprintf("level(%d)", uint8(h))
}

// Config describes the full hierarchy. Defaults (see DefaultConfig) follow
// published POWER5 parameters.
type Config struct {
	Cores int // number of cores sharing L2/L3 (POWER5: 2)

	L1D CacheConfig
	L2  CacheConfig
	L3  CacheConfig

	LatL1  uint64 // load-to-use latency on an L1 hit
	LatL2  uint64 // additional total latency on an L2 hit
	LatL3  uint64
	LatMem uint64

	TLBEntries  int
	TLBWays     int
	PageBytes   int
	TLBWalkLat  uint64 // added to the access on a TLB miss
	MemChannels int    // concurrent DRAM accesses (1 reproduces the paper's
	// memory-bound co-run collapse; see DESIGN.md)
	MemOccupancy uint64 // cycles a channel stays busy per access; 0 = LatMem
}

// DefaultConfig returns POWER5-like parameters.
func DefaultConfig() Config {
	return Config{
		Cores: 2,
		L1D:   CacheConfig{SizeBytes: 32 << 10, Ways: 4, LineBytes: 128},
		L2:    CacheConfig{SizeBytes: 1920 << 10, Ways: 10, LineBytes: 128},
		L3:    CacheConfig{SizeBytes: 36 << 20, Ways: 12, LineBytes: 128},

		LatL1:  2,
		LatL2:  14,
		LatL3:  90,
		LatMem: 230,

		TLBEntries:  1024,
		TLBWays:     4,
		PageBytes:   4096,
		TLBWalkLat:  80,
		MemChannels: 1,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Cores <= 0 {
		return fmt.Errorf("mem: Cores must be positive, got %d", c.Cores)
	}
	for _, cc := range []struct {
		name string
		cfg  CacheConfig
	}{{"L1D", c.L1D}, {"L2", c.L2}, {"L3", c.L3}} {
		if err := cc.cfg.Validate(); err != nil {
			return fmt.Errorf("%s: %w", cc.name, err)
		}
	}
	if c.MemChannels <= 0 {
		return fmt.Errorf("mem: MemChannels must be positive, got %d", c.MemChannels)
	}
	if c.TLBEntries <= 0 || c.TLBWays <= 0 || c.TLBEntries%c.TLBWays != 0 {
		return fmt.Errorf("mem: bad TLB geometry %d/%d", c.TLBEntries, c.TLBWays)
	}
	return nil
}

// Result describes one access.
type Result struct {
	Done    uint64 // cycle at which the value is available
	Level   HitLevel
	TLBMiss bool
}

// Stats counts per-(core,thread) access outcomes.
type Stats struct {
	Hits      [HitLevelCount]uint64
	TLBMisses uint64
	Accesses  uint64
}

// memSched is the per-hardware-thread DRAM scheduling state: a weighted
// fair-queuing virtual timeline. When both threads of a core have recent
// DRAM demand, each thread's requests are spaced inversely to its weight;
// the weights are driven by the software-controlled priority shares (the
// POWER5 nest propagates thread priority to resource arbitration).
type memSched struct {
	vFree       uint64 // thread-virtual next service slot
	lastArrival int64  // cycle of the last request (negative: never)
	weight      float64
}

// Hierarchy is the chip-level memory system: per-core L1D and TLB, shared
// L2 and L3, and DRAM channels. It is not safe for concurrent use; the
// simulator is single-goroutine by design (determinism).
type Hierarchy struct {
	cfg   Config
	l1    []*Cache
	tlb   []*TLB
	l2    *Cache
	l3    *Cache
	sched [][2]memSched
	stats map[statKey]*Stats
}

type statKey struct{ core, thread int }

// NewHierarchy builds the hierarchy. It panics on invalid configuration.
func NewHierarchy(cfg Config) *Hierarchy {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	h := &Hierarchy{
		cfg:   cfg,
		l2:    NewCache(cfg.L2),
		l3:    NewCache(cfg.L3),
		stats: make(map[statKey]*Stats),
	}
	for c := 0; c < cfg.Cores; c++ {
		h.l1 = append(h.l1, NewCache(cfg.L1D))
		h.tlb = append(h.tlb, NewTLB(cfg.TLBEntries, cfg.TLBWays, cfg.PageBytes))
		h.sched = append(h.sched, [2]memSched{
			{lastArrival: -1 << 62, weight: 0.5},
			{lastArrival: -1 << 62, weight: 0.5},
		})
	}
	return h
}

// SetMemWeight sets the DRAM arbitration weight of a hardware thread
// (its decode share under the current priorities). Weights only matter
// while both threads of the core have concurrent DRAM demand.
func (h *Hierarchy) SetMemWeight(core, thread int, w float64) {
	if w <= 0 {
		w = 1e-6
	}
	h.sched[core][thread].weight = w
}

// Config returns the hierarchy configuration.
func (h *Hierarchy) Config() Config { return h.cfg }

func (h *Hierarchy) stat(core, thread int) *Stats {
	k := statKey{core, thread}
	s := h.stats[k]
	if s == nil {
		s = &Stats{}
		h.stats[k] = s
	}
	return s
}

// StatsFor returns accumulated statistics for a (core, thread) pair.
func (h *Hierarchy) StatsFor(core, thread int) Stats {
	return *h.stat(core, thread)
}

// occupancy returns the per-access channel busy time.
func (h *Hierarchy) occupancy() uint64 {
	if h.cfg.MemOccupancy != 0 {
		return h.cfg.MemOccupancy
	}
	return h.cfg.LatMem
}

// dram returns the completion time of a DRAM access by (core, thread)
// issued at now. Each hardware thread has a weighted-fair-queuing virtual
// timeline: requests are spaced by the channel occupancy divided by the
// thread's share when its sibling has live DRAM demand, so aggregate
// throughput never exceeds channel capacity and the split follows the
// software-controlled priority shares. MemChannels scales capacity.
func (h *Hierarchy) dram(core, thread int, now uint64) uint64 {
	occ := h.occupancy()
	s := &h.sched[core][thread]
	sib := &h.sched[core][1-thread]
	// Sibling demand is "live" if it issued a request within a few
	// service slots.
	window := int64(4 * occ)
	contended := int64(now)-sib.lastArrival < window
	spacing := occ
	if contended {
		share := s.weight / (s.weight + sib.weight)
		spacing = uint64(float64(occ) / share)
	}
	if n := uint64(h.cfg.MemChannels); n > 1 {
		spacing /= n
	}
	start := max64(now, s.vFree)
	s.vFree = start + spacing
	s.lastArrival = int64(now)
	return start + h.cfg.LatMem
}

// Load performs a read by (core, thread) at cycle now.
func (h *Hierarchy) Load(core, thread int, addr uint64, now uint64) Result {
	return h.access(core, thread, addr, now, false)
}

// Store performs a write by (core, thread) at cycle now. Stores allocate
// lines but never charge the DRAM channel: the model assumes an unbounded
// store buffer drained with spare write bandwidth (see DESIGN.md).
func (h *Hierarchy) Store(core, thread int, addr uint64, now uint64) Result {
	return h.access(core, thread, addr, now, true)
}

func (h *Hierarchy) access(core, thread int, addr uint64, now uint64, write bool) Result {
	st := h.stat(core, thread)
	st.Accesses++
	var res Result
	lat := h.cfg.LatL1
	if !h.tlb[core].Access(addr) {
		st.TLBMisses++
		res.TLBMiss = true
		lat += h.cfg.TLBWalkLat
	}
	switch {
	case h.l1[core].Access(addr):
		res.Level = HitL1
	case h.l2.Access(addr):
		res.Level = HitL2
		lat = max64(lat, h.cfg.LatL2+boolToU64(res.TLBMiss)*h.cfg.TLBWalkLat)
		h.l1[core].Fill(addr)
	case h.l3.Access(addr):
		res.Level = HitL3
		lat = max64(lat, h.cfg.LatL3+boolToU64(res.TLBMiss)*h.cfg.TLBWalkLat)
		h.l1[core].Fill(addr)
		h.l2.Fill(addr)
	default:
		res.Level = HitMem
		h.l1[core].Fill(addr)
		h.l2.Fill(addr)
		h.l3.Fill(addr)
		if write {
			// Store misses are buffered; no channel charge, fixed latency.
			lat = max64(lat, h.cfg.LatMem)
		} else {
			done := h.dram(core, thread, now) + boolToU64(res.TLBMiss)*h.cfg.TLBWalkLat
			st.Hits[HitMem]++
			res.Done = done
			return res
		}
	}
	st.Hits[res.Level]++
	res.Done = now + lat
	return res
}

// Prefill installs the line containing addr into the shared L2 and L3 and
// the given core's TLB, without charging any latency. Runners use it to
// pre-warm cache-resident working sets, standing in for the steady state a
// real FAME run reaches after its first repetitions.
func (h *Hierarchy) Prefill(core int, addr uint64) {
	if !h.l3.Access(addr) {
		h.l3.Fill(addr)
	}
	if !h.l2.Access(addr) {
		h.l2.Fill(addr)
	}
	h.tlb[core].Access(addr)
}

// L1Resident probes core's L1D for addr without any side effects. The
// pipeline uses it to decide whether a load needs a free LMQ entry before
// issuing.
func (h *Hierarchy) L1Resident(core int, addr uint64) bool {
	return h.l1[core].Lookup(addr)
}

// Reset empties all caches, TLBs and channel state, keeping statistics.
func (h *Hierarchy) Reset() {
	for _, c := range h.l1 {
		c.Reset()
	}
	for _, t := range h.tlb {
		t.Reset()
	}
	h.l2.Reset()
	h.l3.Reset()
	for c := range h.sched {
		for t := range h.sched[c] {
			h.sched[c][t].vFree = 0
			h.sched[c][t].lastArrival = -1 << 62
		}
	}
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

func boolToU64(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
