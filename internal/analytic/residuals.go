package analytic

// Error bars.
//
// The model reports, with every estimate, the worst absolute per-thread
// IPC error observed for its workload-class pair on the calibration
// matrix (internal/experiments calib at quick fidelity, pinned as the
// golden calib.json), padded with margin. The engine escalates to
// simulation whenever this bar exceeds the caller's tolerance, so the
// bound is the accuracy contract of tier 0: the calib golden test fails
// if any residual ever exceeds its class bound, and CI runs it on every
// change.

// Class buckets workloads by how memory-bound their single-thread run
// is; model error correlates with class much more than with individual
// kernels, so residual bounds are committed per class pair.
type Class string

const (
	// ClassCPU: compute-bound (MemBound below 0.2) — integer/FP
	// kernels, branch kernels, L1-resident loads. Stall-heavy kernels
	// whose stalls are execution latency, not memory, land here too.
	ClassCPU Class = "cpu"
	// ClassMixed: intermediate memory-boundedness.
	ClassMixed Class = "mixed"
	// ClassMem: memory-bound (MemBound above 0.6) — load kernels
	// thrashing L2 and beyond, where cache-capacity interference the
	// model cannot see from single-thread features concentrates.
	ClassMem Class = "mem"
)

// Classify buckets a calibrated workload by its memory-boundedness.
func Classify(f Features) Class {
	switch mb := f.MemBound(); {
	case mb < 0.2:
		return ClassCPU
	case mb > 0.6:
		return ClassMem
	default:
		return ClassMixed
	}
}

// bounds holds the committed worst-case absolute IPC residuals per
// (class of the predicted thread, class of its partner), measured on
// the quick calibration matrix and padded ~25%. Regenerate with
// `p5exp -exp calib -quick` after any model change (see CONTRIBUTING).
//
// Measured worst residuals behind these numbers (quick matrix, 7
// workloads × 7 × 5 priority diffs): cpu|cpu 0.067 (flush-refill
// slope), cpu|mem 0.255 (a boosted compute thread throttled by its
// partner's cache-capacity spill, invisible to single-thread
// features), mem|cpu 0.031, mem|mem 0.302 (L2×L3 footprints
// overflowing the shared cache). No calibration workload classifies
// mixed; its rows carry the widest measured bound as a conservative
// stand-in until one does.
var bounds = map[Class]map[Class]float64{
	ClassCPU:   {ClassCPU: 0.09, ClassMixed: 0.38, ClassMem: 0.32},
	ClassMixed: {ClassCPU: 0.38, ClassMixed: 0.38, ClassMem: 0.38},
	ClassMem:   {ClassCPU: 0.05, ClassMixed: 0.38, ClassMem: 0.38},
}

// Bound returns the error bar for a pair: the worst of the two
// per-thread bounds, since the estimate serves both threads' IPCs.
func Bound(cp, cs Class) float64 {
	a := bounds[cp][cs]
	b := bounds[cs][cp]
	if b > a {
		a = b
	}
	return a
}

// DefaultTolerance accepts every class pair: the loosest committed
// bound. `-estimate default` and the benchmark gate use it; callers
// wanting tighter accuracy pass their own τ and let the engine escalate
// the pairs the model cannot promise.
func DefaultTolerance() float64 {
	max := 0.0
	for _, row := range bounds {
		for _, v := range row {
			if v > max {
				max = v
			}
		}
	}
	return max
}
