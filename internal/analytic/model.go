package analytic

// The closed-form pair model.
//
// predictIPC answers: given thread F's single-thread features, its
// partner G's features, and the decode-slot share s the priority
// allocator grants F, what IPC does F sustain co-scheduled with G?
//
// Three effects, each read directly off the simulator's behaviour on
// the calibration matrix (the golden calib.json):
//
//	decode cap   s · GroupSize
//	    The allocator offers F exactly s of decode cycles and slots the
//	    partner leaves idle are NOT redistributed; each granted cycle
//	    F can use decodes at most one dispatch group. Its long-run IPC
//	    therefore cannot exceed the grant rate times its average group
//	    size (cpu_int forms ~2-instruction groups and saturates at
//	    2s; pointer-chase loads pack ~5 and saturate at 5s). This cap
//	    is what makes a compute-bound thread at priority -4 collapse
//	    to ~2/32 IPC regardless of its partner.
//
//	flush refill   CPI += mpki · (1/s − 1)
//	    After a branch-mispredict flush the frontend refills at the
//	    granted rate: every mispredict costs the extra cycles spent
//	    waiting for grants that a single-thread run would have had
//	    back-to-back — (1/s − 1) per mispredict. At s near 1 this
//	    vanishes; at s = 1/2 it is one extra cycle per mispredict,
//	    which is exactly the br_miss co-run degradation the simulator
//	    shows against every partner class.
//
//	memory contention   × (1 − mbF·mbG·(1 − s))
//	    Two memory-bound threads split load-miss-queue occupancy and
//	    memory bandwidth in proportion to decode share (the simulator
//	    weights memory service by priority — see pipeline's
//	    syncMemWeights), so the degradation is the product of both
//	    sides' memory-boundedness, relieved by the thread's own share.
//	    Memory-boundedness (MemBound below) separates a cache-thrashing
//	    load kernel — stalls, issues through the LSU, AND keeps the
//	    completion table full behind outstanding misses — from an
//	    FP-latency kernel that stalls decode just as often but touches
//	    no memory, and from a flush-dominated branch kernel whose
//	    window drains; the simulator shows neither of those interferes
//	    with anything.
//
// What the model deliberately does not capture — and the committed
// class-pair residual bounds (residuals.go) must cover: cache-capacity
// blowup between specific footprint combinations (two L2-sized working
// sets overflowing the shared L2 behave like L3-resident ones; an
// L3-sized set next to a streaming one does not), which single-thread
// features cannot see. Those pairs classify as mem×mem, carry the
// widest bound, and escalate to simulation first as the caller's
// tolerance tightens.
const (
	// minShare floors the share divisor (Share is never 0 inside the
	// model's domain, but the guard keeps the math total).
	minShare = 1.0 / 64
	// minGroup floors the measured group size.
	minGroup = 1.0
	// loadSaturation is the LoadFrac at which a kernel counts as fully
	// load-driven: pointer-chase loops interleave each load with ~1.5
	// address-arithmetic ops, so their LS share saturates near 0.35
	// rather than 1.
	loadSaturation = 0.35
)

// predictIPC predicts thread F's co-run IPC from its own features f,
// its partner's features g, and its decode-slot share s.
func predictIPC(f, g Features, s float64) float64 {
	if s < minShare {
		s = minShare
	}
	groupSize := f.GroupSize
	if groupSize < minGroup {
		groupSize = minGroup
	}
	ceiling := s * groupSize

	if f.IPC <= 0 {
		return 0
	}
	flushCPI := f.MispredictsPerInstr * (1/s - 1)
	memFactor := 1 - f.MemBound()*g.MemBound()*(1-s)
	if memFactor < 0 {
		memFactor = 0
	}
	natural := memFactor / (1/f.IPC + flushCPI)

	if natural < ceiling {
		return natural
	}
	return ceiling
}

// MemBound is the workload's memory-boundedness: the fraction of
// offered decode slots lost to stalls, gated by whether the stalls look
// like outstanding cache misses — issued work flows through the
// load/store units AND the completion window stays full behind a
// long-latency head. Near 1 for cache-thrashing load kernels; near 0
// for compute kernels, FP-latency kernels (no loads), and
// flush-dominated branch kernels (drained window).
func (f Features) MemBound() float64 {
	loads := f.LoadFrac / loadSaturation
	if loads > 1 {
		loads = 1
	}
	return f.StallFrac * loads * f.GCTFull
}
