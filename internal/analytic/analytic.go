// Package analytic is the tier-0 answer path: a closed-form model of
// the POWER5 decode-slot allocator and miss-throttle that predicts the
// per-thread IPCs of a co-scheduled pair from features measured once
// per workload on cheap single-thread runs — no pair simulation.
//
// The model (model.go) composes three effects the simulator produces
// cycle-by-cycle:
//
//   - Decode cap: a thread at priority difference diff receives
//     prio.Share(diff) of decode cycles, slots its partner leaves idle
//     are not redistributed, and each granted cycle decodes at most one
//     dispatch group — so co-run IPC is capped at share × group size.
//   - Flush refill: after a branch-mispredict flush the frontend
//     refills at the granted rate, adding (1/share − 1) cycles per
//     mispredict over the single-thread run.
//   - Memory contention: two memory-bound threads split miss-queue
//     occupancy and bandwidth in proportion to decode share, degrading
//     each other by the product of their memory-boundedness.
//
// Calibration runs each workload once in single-thread mode on a fresh
// chip — exactly the placement engine.Single describes — and extracts
// Features from the pipeline's ThreadStats. Calibrations are memoized
// in-process and, when the engine has a persistent store, across
// processes under engine.Memo (schema power5prio/analytic/calib/v1).
//
// Every estimate carries an error bar: the committed worst-case
// absolute IPC residual for the workload-class pair (residuals.go),
// measured against the golden quick suite by the calib experiment
// (internal/experiments). The engine escalates to simulation whenever
// the bar exceeds the caller's tolerance, so the model's inaccuracy is
// capped by contract, not hope.
package analytic

import (
	"fmt"
	"sync"

	"power5prio/internal/core"
	"power5prio/internal/engine"
	"power5prio/internal/fame"
	"power5prio/internal/isa"
	"power5prio/internal/prio"
	"power5prio/internal/workload"
)

// calibSchema versions the persistent calibration records. Bump it when
// Features gains fields or the calibration placement changes.
const calibSchema = "power5prio/analytic/calib/v1"

// Features is one workload's calibration record: everything the model
// needs, measured from a single-thread run. The struct is flat and
// field-ordered for canonical hashing and stable JSON (it is persisted
// under engine.Memo).
type Features struct {
	// IPC is the single-thread FAME IPC — the model's upper bound for
	// the thread's co-run IPC.
	IPC float64 `json:"ipc"`
	// RepInstrs is the average retired instructions per repetition,
	// used to synthesize AvgRepCycles for a predicted IPC.
	RepInstrs float64 `json:"rep_instrs"`
	// GroupSize is the average instructions per decoded dispatch group
	// — the per-granted-slot decode bandwidth, which with the priority
	// share forms the hard IPC ceiling (model.go).
	GroupSize float64 `json:"group_size"`
	// StallFrac is DecodeStalled/DecodeGranted: the fraction of offered
	// slots lost to pipeline stalls.
	StallFrac float64 `json:"stall_frac"`
	// LoadFrac is the fraction of issued operations going through the
	// load/store units; with StallFrac and GCTFull it forms MemBound,
	// separating memory-bound stalls from execution-latency stalls.
	LoadFrac float64 `json:"load_frac"`
	// GCTFull is the mean global-completion-table occupancy as a
	// fraction of its capacity: near 1 when long-latency operations
	// keep the shared window full (the signature of outstanding cache
	// misses), low for flush-dominated kernels that drain it.
	GCTFull float64 `json:"gct_full"`
	// MispredictsPerInstr is branch mispredictions per retired
	// instruction (each flush refills at granted — not full — decode
	// bandwidth in a co-run, which the share math alone cannot see).
	MispredictsPerInstr float64 `json:"mispredicts_per_instr"`
	// TimedOut records a calibration that hit the FAME cycle cap; the
	// model declines jobs involving such workloads.
	TimedOut bool `json:"timed_out,omitempty"`
}

// calKey identifies one calibration: the workload content plus every
// job field that shapes its single-thread run. It hashes canonically
// (all fields are flat values), which the keyhash tests pin.
type calKey struct {
	Ref       workload.Ref
	Privilege prio.Privilege
	IterScale float64
	Chip      core.Config
	Fame      fame.Options
}

type calEntry struct {
	once sync.Once
	f    Features
	err  error
}

// Model is a calibrated analytical estimator implementing
// engine.Estimator. It is safe for concurrent use; calibration runs at
// most once per distinct (workload, configuration) per process.
type Model struct {
	eng *engine.Engine

	mu  sync.Mutex
	cal map[calKey]*calEntry
}

// New returns a model calibrating through eng: workload refs resolve in
// eng's registry, and calibration records persist in eng's store (when
// it has one) so warm daemons skip even the single-thread runs.
func New(eng *engine.Engine) *Model {
	return &Model{eng: eng, cal: make(map[calKey]*calEntry)}
}

// Calibrations reports how many distinct (workload, configuration)
// calibrations this model has resolved (computed or loaded from the
// store).
func (m *Model) Calibrations() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.cal)
}

// EstimateJob implements engine.Estimator: a prediction for co-scheduled
// pair jobs within the model's domain, ok=false otherwise.
func (m *Model) EstimateJob(j engine.Job) (engine.Estimate, bool) {
	p, err := m.Describe(j)
	if err != nil {
		return engine.Estimate{}, false
	}
	return p.Estimate, true
}

// Prediction is the full detail behind one estimate, for reports and
// calibration tables.
type Prediction struct {
	// Estimate is what EstimateJob serves: the predicted PairResult and
	// the class-pair error bar.
	Estimate engine.Estimate
	// Primary/Secondary are the calibration features the prediction was
	// computed from.
	Primary, Secondary Features
	// ClassP/ClassS are the workload classes the error bar was looked
	// up under.
	ClassP, ClassS Class
	// ShareP is the decode-slot fraction granted to the primary thread
	// at the job's priority difference.
	ShareP float64
}

// Describe computes the prediction for a pair job, calibrating its
// workloads on first sight. It errors outside the model's domain:
// single-thread jobs (those ARE the calibration — estimating them from
// themselves would be circular), thread-off or low-power priority
// pairs, unknown workloads, and workloads whose calibration timed out.
func (m *Model) Describe(j engine.Job) (Prediction, error) {
	if j.Primary.IsZero() || j.Secondary.IsZero() {
		return Prediction{}, fmt.Errorf("analytic: single-thread jobs are not estimable")
	}
	if j.PrioP == prio.ThreadOff || j.PrioS == prio.ThreadOff {
		return Prediction{}, fmt.Errorf("analytic: thread-off pair (%v,%v) outside model domain", j.PrioP, j.PrioS)
	}
	if j.PrioP == prio.VeryLow && j.PrioS == prio.VeryLow {
		return Prediction{}, fmt.Errorf("analytic: low-power mode (1,1) outside model domain")
	}
	if err := j.Fame.Validate(); err != nil {
		return Prediction{}, err
	}
	if err := j.Chip.Validate(); err != nil {
		return Prediction{}, err
	}
	fp, err := m.features(keyOf(j, j.Primary))
	if err != nil {
		return Prediction{}, err
	}
	fs, err := m.features(keyOf(j, j.Secondary))
	if err != nil {
		return Prediction{}, err
	}
	if fp.TimedOut || fs.TimedOut {
		return Prediction{}, fmt.Errorf("analytic: calibration timed out; workload outside model domain")
	}

	shareP := prio.Share(int(j.PrioP) - int(j.PrioS))
	ipcP := predictIPC(fp, fs, shareP)
	ipcS := predictIPC(fs, fp, 1-shareP)
	cp, cs := Classify(fp), Classify(fs)

	var pair fame.PairResult
	pair.Thread[0] = synthThread(fp, ipcP)
	pair.Thread[1] = synthThread(fs, ipcS)
	pair.TotalIPC = ipcP + ipcS
	return Prediction{
		Estimate: engine.Estimate{Pair: pair, ErrorBar: Bound(cp, cs)},
		Primary:  fp, Secondary: fs,
		ClassP: cp, ClassS: cs,
		ShareP: shareP,
	}, nil
}

// synthThread shapes a predicted IPC into the ThreadResult fields the
// model can honestly fill. Counters only a simulation produces (Reps,
// Instructions, Cycles) stay zero — an estimate does not fake them.
func synthThread(f Features, ipc float64) fame.ThreadResult {
	tr := fame.ThreadResult{Active: true, IPC: ipc}
	if ipc > 0 {
		tr.AvgRepCycles = f.RepInstrs / ipc
	}
	return tr
}

func keyOf(j engine.Job, ref workload.Ref) calKey {
	return calKey{Ref: ref, Privilege: j.Privilege, IterScale: j.IterScale, Chip: j.Chip, Fame: j.Fame}
}

// features returns the calibration record for k, computing it at most
// once per process and memoizing through the engine's persistent store.
func (m *Model) features(k calKey) (Features, error) {
	m.mu.Lock()
	ent, ok := m.cal[k]
	if !ok {
		ent = &calEntry{}
		m.cal[k] = ent
	}
	m.mu.Unlock()
	ent.once.Do(func() {
		_, ent.err = m.eng.Memo(calibSchema, k, &ent.f, func() error {
			f, err := calibrate(m.eng.Registry(), k)
			if err != nil {
				return err
			}
			ent.f = f
			return nil
		})
		if ent.err != nil {
			// A failed calibration must not stick as a zero record;
			// drop the entry so a later call can retry.
			m.mu.Lock()
			if m.cal[k] == ent {
				delete(m.cal, k)
			}
			m.mu.Unlock()
		}
	})
	return ent.f, ent.err
}

// calibrate measures one workload's Features from a single-thread run
// on a fresh chip — the same placement engine.Single describes, so the
// record is a pure function of the key.
func calibrate(reg *workload.Registry, k calKey) (Features, error) {
	kern, err := reg.Build(k.Ref, k.IterScale)
	if err != nil {
		return Features{}, err
	}
	ch := core.NewChip(k.Chip)
	ch.PlacePair(kern, nil, prio.Medium, prio.Medium, k.Privilege)
	res := fame.Measure(ch, k.Fame)

	c := ch.ExperimentCore()
	st := c.Stats(0)
	cs := c.CoreStats()
	tr := res.Thread[0]

	f := Features{IPC: tr.IPC, TimedOut: res.TimedOut}
	if tr.Reps > 0 {
		f.RepInstrs = float64(tr.Instructions) / float64(tr.Reps)
	}
	if cs.DecodedGroups > 0 {
		f.GroupSize = float64(cs.DecodedInstrs) / float64(cs.DecodedGroups)
	}
	if st.DecodeGranted > 0 {
		f.StallFrac = float64(st.DecodeStalled) / float64(st.DecodeGranted)
	}
	var issued uint64
	for _, n := range cs.IssuedByUnit {
		issued += n
	}
	if issued > 0 {
		f.LoadFrac = float64(cs.IssuedByUnit[isa.UnitLS]) / float64(issued)
	}
	if n := k.Chip.Pipe.GCTEntries; n > 0 {
		f.GCTFull = cs.AvgGCTOccupancy() / float64(n)
	}
	if st.Instructions > 0 {
		f.MispredictsPerInstr = float64(st.BranchMispredicts) / float64(st.Instructions)
	}
	return f, nil
}
