package analytic

import (
	"testing"

	"power5prio/internal/cachestore"
	"power5prio/internal/core"
	"power5prio/internal/engine"
	"power5prio/internal/fame"
	"power5prio/internal/microbench"
	"power5prio/internal/prio"
	"power5prio/internal/workload"
)

// testOptions keeps calibration runs fast: two repetitions, tiny kernels.
func testOptions() fame.Options {
	return fame.Options{MinReps: 2, WarmupReps: 0, MaxCycles: 50_000_000}
}

const testScale = 0.02

func ref(t testing.TB, name string) workload.Ref {
	t.Helper()
	r, err := workload.NewRegistry().Resolve(name)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func pairJob(t testing.TB, a, b string, pp, ps prio.Level) engine.Job {
	t.Helper()
	return engine.Pair(ref(t, a), ref(t, b), pp, ps, prio.Supervisor, testScale, core.DefaultConfig(), testOptions())
}

// TestEstimateShape: within the domain the model serves a full pair
// prediction — both threads active, TotalIPC the sum, a positive error
// bar, and honest zeros for the counters only a simulation produces.
func TestEstimateShape(t *testing.T) {
	m := New(engine.New(1))
	j := pairJob(t, microbench.CPUInt, microbench.LdIntL2, prio.Medium, prio.Medium)
	ev, ok := m.EstimateJob(j)
	if !ok {
		t.Fatal("EstimateJob declined an in-domain pair job")
	}
	p0, p1 := ev.Pair.Thread[0], ev.Pair.Thread[1]
	if !p0.Active || !p1.Active {
		t.Errorf("predicted threads not both active: %+v", ev.Pair)
	}
	if p0.IPC <= 0 || p1.IPC <= 0 {
		t.Errorf("predicted IPCs not positive: %v, %v", p0.IPC, p1.IPC)
	}
	if got, want := ev.Pair.TotalIPC, p0.IPC+p1.IPC; got != want {
		t.Errorf("TotalIPC = %v, want %v", got, want)
	}
	if ev.ErrorBar <= 0 {
		t.Errorf("ErrorBar = %v, want > 0", ev.ErrorBar)
	}
	if p0.Reps != 0 || p0.Instructions != 0 || p0.Cycles != 0 || ev.Pair.Cycles != 0 {
		t.Errorf("estimate faked simulation counters: %+v", ev.Pair)
	}
	if ev.Pair.TimedOut {
		t.Error("estimate marked TimedOut")
	}
}

// TestEstimateDeterministic: the same job estimates to the identical
// value, and a fresh model (fresh calibration) agrees exactly.
func TestEstimateDeterministic(t *testing.T) {
	j := pairJob(t, microbench.BrMiss, microbench.LdIntMem, prio.High, prio.Low)
	m1, m2 := New(engine.New(1)), New(engine.New(4))
	a, ok := m1.EstimateJob(j)
	if !ok {
		t.Fatal("declined")
	}
	b, _ := m1.EstimateJob(j)
	c, ok := m2.EstimateJob(j)
	if !ok {
		t.Fatal("fresh model declined")
	}
	if a != b {
		t.Errorf("repeat estimate differs:\n%+v\n%+v", a, b)
	}
	if a != c {
		t.Errorf("fresh-model estimate differs:\n%+v\n%+v", a, c)
	}
}

// TestCalibrationMemoized: estimating many pairs over two workloads
// calibrates each workload exactly once.
func TestCalibrationMemoized(t *testing.T) {
	m := New(engine.New(1))
	for _, pp := range []prio.Level{prio.VeryHigh, prio.Medium, prio.Low} {
		if _, ok := m.EstimateJob(pairJob(t, microbench.CPUInt, microbench.LdIntL2, pp, prio.Medium)); !ok {
			t.Fatalf("declined at priority %v", pp)
		}
	}
	if got := m.Calibrations(); got != 2 {
		t.Errorf("Calibrations() = %d after 3 pairs of 2 workloads, want 2", got)
	}
	// Swapped order reuses the same records.
	if _, ok := m.EstimateJob(pairJob(t, microbench.LdIntL2, microbench.CPUInt, prio.Medium, prio.Medium)); !ok {
		t.Fatal("declined swapped pair")
	}
	if got := m.Calibrations(); got != 2 {
		t.Errorf("Calibrations() = %d after swapped pair, want 2", got)
	}
	// A different fidelity is a different calibration.
	j := pairJob(t, microbench.CPUInt, microbench.LdIntL2, prio.Medium, prio.Medium)
	j.Fame.MinReps = 3
	if _, ok := m.EstimateJob(j); !ok {
		t.Fatal("declined at different fidelity")
	}
	if got := m.Calibrations(); got != 4 {
		t.Errorf("Calibrations() = %d after fidelity change, want 4", got)
	}
}

// TestModelDomain: everything outside the domain declines rather than
// serving a wrong answer.
func TestModelDomain(t *testing.T) {
	m := New(engine.New(1))
	cases := map[string]engine.Job{
		"single-thread": engine.Single(ref(t, microbench.CPUInt), prio.Supervisor, testScale, core.DefaultConfig(), testOptions()),
		"zero job":      {},
		"thread-off":    pairJob(t, microbench.CPUInt, microbench.LdIntL2, prio.ThreadOff, prio.Medium),
		"low-power":     pairJob(t, microbench.CPUInt, microbench.LdIntL2, prio.VeryLow, prio.VeryLow),
	}
	badFame := pairJob(t, microbench.CPUInt, microbench.LdIntL2, prio.Medium, prio.Medium)
	badFame.Fame.MinReps = 0
	cases["invalid fame"] = badFame
	badChip := pairJob(t, microbench.CPUInt, microbench.LdIntL2, prio.Medium, prio.Medium)
	badChip.Chip.ExperimentCore = 99
	cases["invalid chip"] = badChip
	forged := pairJob(t, microbench.CPUInt, microbench.LdIntL2, prio.Medium, prio.Medium)
	forged.Secondary = workload.Ref{Name: "no_such_bench", Family: workload.Micro, Fingerprint: 1}
	cases["unknown workload"] = forged

	for name, j := range cases {
		if _, ok := m.EstimateJob(j); ok {
			t.Errorf("%s: EstimateJob served an answer, want decline", name)
		}
	}
	// Only the forged-partner case reaches calibration (its valid primary
	// calibrates before the unknown secondary fails); everything else is
	// rejected before any simulation.
	if got := m.Calibrations(); got > 1 {
		t.Errorf("declined jobs left %d calibrations, want at most 1", got)
	}
}

// TestFeatureExtraction: calibration features carry the physical
// signatures the model depends on.
func TestFeatureExtraction(t *testing.T) {
	m := New(engine.New(1))
	j := pairJob(t, microbench.CPUInt, microbench.LdIntL2, prio.Medium, prio.Medium)
	p, err := m.Describe(j)
	if err != nil {
		t.Fatal(err)
	}
	cpu, ld := p.Primary, p.Secondary
	if cpu.IPC <= 0 || ld.IPC <= 0 {
		t.Fatalf("non-positive single-thread IPCs: %+v / %+v", cpu, ld)
	}
	if cpu.IPC <= ld.IPC {
		t.Errorf("cpu_int ST IPC %v not above ldint_l2's %v", cpu.IPC, ld.IPC)
	}
	if cpu.LoadFrac != 0 {
		t.Errorf("cpu_int LoadFrac = %v, want 0 (no memory ops)", cpu.LoadFrac)
	}
	if ld.LoadFrac <= 0 {
		t.Errorf("ldint_l2 LoadFrac = %v, want > 0", ld.LoadFrac)
	}
	if cpu.GroupSize < 1 || ld.GroupSize < 1 {
		t.Errorf("group sizes below 1: %v / %v", cpu.GroupSize, ld.GroupSize)
	}
	if ld.StallFrac <= cpu.StallFrac {
		t.Errorf("cache-thrashing StallFrac %v not above compute's %v", ld.StallFrac, cpu.StallFrac)
	}
	if cpu.MemBound() >= ld.MemBound() {
		t.Errorf("MemBound ordering wrong: cpu_int %v >= ldint_l2 %v", cpu.MemBound(), ld.MemBound())
	}
	if p.ClassP != ClassCPU {
		t.Errorf("cpu_int classified %q, want %q", p.ClassP, ClassCPU)
	}
	if p.ShareP != 0.5 {
		t.Errorf("ShareP at equal priority = %v, want 0.5", p.ShareP)
	}
}

// TestPredictedSharesMonotone: boosting a thread's priority never
// lowers its predicted IPC and never raises its partner's.
func TestPredictedSharesMonotone(t *testing.T) {
	m := New(engine.New(1))
	lastP, lastS := 0.0, 2.0
	for _, pp := range []prio.Level{prio.Low, prio.Medium, prio.High, prio.VeryHigh} {
		p, err := m.Describe(pairJob(t, microbench.CPUInt, microbench.LdIntL2, pp, prio.Medium))
		if err != nil {
			t.Fatal(err)
		}
		ipcP, ipcS := p.Estimate.Pair.Thread[0].IPC, p.Estimate.Pair.Thread[1].IPC
		if ipcP < lastP {
			t.Errorf("priority %v: primary IPC %v fell below %v", pp, ipcP, lastP)
		}
		if ipcS > lastS {
			t.Errorf("priority %v: secondary IPC %v rose above %v", pp, ipcS, lastS)
		}
		lastP, lastS = ipcP, ipcS
	}
}

// TestBounds: the committed residual table is total over classes,
// symmetric through Bound, and DefaultTolerance accepts all of it.
func TestBounds(t *testing.T) {
	classes := []Class{ClassCPU, ClassMixed, ClassMem}
	tol := DefaultTolerance()
	if tol <= 0 {
		t.Fatalf("DefaultTolerance() = %v", tol)
	}
	for _, a := range classes {
		for _, b := range classes {
			bd := Bound(a, b)
			if bd <= 0 {
				t.Errorf("Bound(%s,%s) = %v, want > 0", a, b, bd)
			}
			if got := Bound(b, a); got != bd {
				t.Errorf("Bound(%s,%s) = %v != Bound(%s,%s) = %v", a, b, bd, b, a, got)
			}
			if bd > tol {
				t.Errorf("Bound(%s,%s) = %v exceeds DefaultTolerance %v", a, b, bd, tol)
			}
		}
	}
}

// TestCalKeyHashable: the persistent calibration key hashes canonically
// under its schema — the contract that lets records round-trip through
// the engine store across processes.
func TestCalKeyHashable(t *testing.T) {
	j := pairJob(t, microbench.CPUInt, microbench.LdIntL2, prio.Medium, prio.Medium)
	k1 := keyOf(j, j.Primary)
	k2 := keyOf(j, j.Secondary)
	h1, err := cachestore.HashValue(calibSchema, k1)
	if err != nil {
		t.Fatalf("HashValue(calKey): %v", err)
	}
	h2, err := cachestore.HashValue(calibSchema, k2)
	if err != nil {
		t.Fatal(err)
	}
	if h1 == h2 {
		t.Error("distinct workloads hashed to the same calibration key")
	}
	if again, _ := cachestore.HashValue(calibSchema, k1); again != h1 {
		t.Error("calKey hash not deterministic")
	}
}

// TestCalibrationPersists: a second model sharing the first's store
// loads calibration records instead of re-measuring.
func TestCalibrationPersists(t *testing.T) {
	st, err := cachestore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	j := pairJob(t, microbench.CPUInt, microbench.LdIntL2, prio.Medium, prio.Medium)

	e1 := engine.NewWith(1, nil, engine.WithStore(st))
	a, ok := New(e1).EstimateJob(j)
	if !ok {
		t.Fatal("declined")
	}
	w1 := e1.Stats().DiskWrites
	if w1 < 2 {
		t.Fatalf("first model persisted %d records, want >= 2", w1)
	}

	e2 := engine.NewWith(1, nil, engine.WithStore(st))
	b, ok := New(e2).EstimateJob(j)
	if !ok {
		t.Fatal("second model declined")
	}
	if a != b {
		t.Errorf("store round-trip changed the estimate:\n%+v\n%+v", a, b)
	}
	if got := e2.Stats().DiskWrites; got != 0 {
		t.Errorf("second model re-measured: %d disk writes", got)
	}
	if got := e2.Stats().DiskHits; got < 2 {
		t.Errorf("second model loaded %d records from the store, want >= 2", got)
	}
}
