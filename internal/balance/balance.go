// Package balance implements the POWER5 dynamic hardware resource-balancing
// mechanism described in Section 3.1 of the paper: the core monitors GCT
// (reorder buffer) occupancy and L2/TLB miss counts per thread and, when a
// thread is judged to be blocking its sibling, throttles it back by
// stalling its decode (Stall), flushing its dispatch-pending instructions
// and stalling (Flush), or reducing its decode rate (throttle).
package balance

import "fmt"

// Mode selects which balancing action the core applies.
type Mode uint8

// Balancing modes.
const (
	// Off disables hardware balancing (for ablation studies).
	Off Mode = iota
	// Stall stops instruction decode of the offending thread until the
	// congestion clears.
	Stall
	// Flush additionally flushes the offending thread's dispatch-pending
	// instructions when it holds GCT entries while stalled on a
	// long-latency miss.
	Flush
)

var modeNames = [...]string{"off", "stall", "flush"}

// String returns the mode name.
func (m Mode) String() string {
	if int(m) < len(modeNames) {
		return modeNames[m]
	}
	return fmt.Sprintf("mode(%d)", uint8(m))
}

// Config sets the balancing thresholds. The numbers mirror the intent of
// the POWER5 implementation: an offending thread may not hold more than
// roughly 70% of the shared GCT while its sibling is active.
type Config struct {
	Mode Mode
	// GCTHigh: a thread holding >= GCTHigh GCT entries (while the sibling
	// is active) has its decode stalled.
	GCTHigh int
	// GCTLow: decode resumes when the thread's GCT occupancy drops below
	// GCTLow (hysteresis).
	GCTLow int
	// MissHigh: a thread with >= MissHigh outstanding L2-or-beyond misses
	// is decode-throttled to one slot in ThrottleRate.
	MissHigh int
	// ThrottleRate: when miss-throttled, the thread receives only one of
	// every ThrottleRate decode slots it would otherwise get.
	ThrottleRate int
}

// DefaultConfig returns thresholds tuned for the 20-entry POWER5 GCT.
func DefaultConfig() Config {
	return Config{
		Mode:         Flush,
		GCTHigh:      14,
		GCTLow:       12,
		MissHigh:     6,
		ThrottleRate: 8,
	}
}

// Validate checks threshold consistency.
func (c Config) Validate() error {
	if c.Mode == Off {
		return nil
	}
	if c.GCTHigh <= 0 || c.GCTLow <= 0 || c.GCTLow > c.GCTHigh {
		return fmt.Errorf("balance: need 0 < GCTLow <= GCTHigh, got low=%d high=%d", c.GCTLow, c.GCTHigh)
	}
	if c.MissHigh <= 0 {
		return fmt.Errorf("balance: MissHigh must be positive, got %d", c.MissHigh)
	}
	if c.ThrottleRate <= 1 {
		return fmt.Errorf("balance: ThrottleRate must be > 1, got %d", c.ThrottleRate)
	}
	return nil
}

// Decision is the balancing outcome for one thread on one cycle.
type Decision struct {
	// StallDecode: the thread must not decode this cycle.
	StallDecode bool
	// FlushDispatch: the thread's dispatch-pending (decoded but not yet
	// dispatched) instructions must be flushed now.
	FlushDispatch bool
}

// Monitor tracks per-thread congestion and produces balancing decisions.
// The zero value is a monitor with balancing Off.
type Monitor struct {
	cfg      Config
	stalled  [2]bool
	flushed  [2]bool // flush already applied for the current episode
	throttle [2]int  // decode-slot countdown while miss-throttled
}

// NewMonitor returns a monitor for the given configuration. It panics on an
// invalid configuration (configurations are code, not user input).
func NewMonitor(cfg Config) *Monitor {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Monitor{cfg: cfg}
}

// Config returns the monitor's configuration.
func (m *Monitor) Config() Config { return m.cfg }

// Observe is called once per cycle per thread with the thread's current GCT
// occupancy (entries held), the number of its outstanding L2-or-beyond
// misses, whether the sibling thread is active, and whether this thread has
// a long-latency (L2-or-beyond) miss outstanding.
func (m *Monitor) Observe(thread, gctHeld, outstandingMisses int, siblingActive bool) Decision {
	if m.cfg.Mode == Off || !siblingActive {
		m.stalled[thread] = false
		m.flushed[thread] = false
		return Decision{}
	}
	var d Decision
	// GCT watermark with hysteresis.
	if m.stalled[thread] {
		if gctHeld < m.cfg.GCTLow {
			m.stalled[thread] = false
			m.flushed[thread] = false
		}
	} else if gctHeld >= m.cfg.GCTHigh {
		m.stalled[thread] = true
		if m.cfg.Mode == Flush && outstandingMisses > 0 && !m.flushed[thread] {
			d.FlushDispatch = true
			m.flushed[thread] = true
		}
	}
	d.StallDecode = m.stalled[thread]
	// Miss-count decode throttling.
	if outstandingMisses >= m.cfg.MissHigh {
		if m.throttle[thread] > 0 {
			m.throttle[thread]--
			d.StallDecode = true
		} else {
			m.throttle[thread] = m.cfg.ThrottleRate - 1
		}
	} else {
		m.throttle[thread] = 0
	}
	return d
}

// CanSkip reports whether Observe calls with these constant inputs are
// transition-free: no watermark stall or unstall, and no dispatch flush.
// While it holds, the only monitor state that evolves is the periodic
// miss-throttle countdown, which SkipObserve advances in closed form —
// the precondition the simulator's idle-cycle fast-forward checks before
// skipping the per-cycle Observe calls.
func (m *Monitor) CanSkip(thread, gctHeld int, siblingActive bool) bool {
	if m.cfg.Mode == Off || !siblingActive {
		// Observe's early path clears any stall episode: that is a
		// transition unless the episode state is already clear.
		return !m.stalled[thread] && !m.flushed[thread]
	}
	if m.stalled[thread] {
		return gctHeld >= m.cfg.GCTLow
	}
	return gctHeld < m.cfg.GCTHigh
}

// SkipObserve advances the monitor by n Observe calls with constant
// inputs in closed form. The caller must have checked CanSkip with the
// same inputs; only the miss-throttle countdown changes, and it is
// periodic with period ThrottleRate.
func (m *Monitor) SkipObserve(thread, outstandingMisses int, siblingActive bool, n uint64) {
	if n == 0 || m.cfg.Mode == Off || !siblingActive {
		return
	}
	if outstandingMisses >= m.cfg.MissHigh {
		rate := uint64(m.cfg.ThrottleRate)
		t := uint64(m.throttle[thread])
		m.throttle[thread] = int((t + rate - n%rate) % rate)
	} else {
		m.throttle[thread] = 0
	}
}

// ThrottleWindow reports whether the thread's decode is miss-throttled
// under the given constant inputs and, if so, the countdown geometry the
// event-wheel fast-forward posts as the thread's next decode event:
// delta is the number of Observe calls until the first stall-free one (0
// means the very next Observe does not throttle-stall), period is the
// throttle period, so the stall-free Observes are exactly those delta,
// delta+period, delta+2*period, ... calls ahead. The values are only
// meaningful while CanSkip holds for the same inputs (transition-free
// episode) and the miss count stays constant — both of which the
// fast-forward's idle analysis establishes before using them.
func (m *Monitor) ThrottleWindow(thread, outstandingMisses int, siblingActive bool) (delta, period uint64, throttled bool) {
	if m.cfg.Mode == Off || !siblingActive || outstandingMisses < m.cfg.MissHigh {
		return 0, 0, false
	}
	return uint64(m.throttle[thread]), uint64(m.cfg.ThrottleRate), true
}

// Stalled reports whether the thread is currently decode-stalled by the
// GCT watermark mechanism.
func (m *Monitor) Stalled(thread int) bool { return m.stalled[thread] }

// Reset clears all episode state.
func (m *Monitor) Reset() {
	m.stalled = [2]bool{}
	m.flushed = [2]bool{}
	m.throttle = [2]int{}
}
