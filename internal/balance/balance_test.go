package balance

import "testing"

func TestModeString(t *testing.T) {
	for m, want := range map[Mode]string{Off: "off", Stall: "stall", Flush: "flush"} {
		if m.String() != want {
			t.Errorf("%d.String() = %q, want %q", m, m.String(), want)
		}
	}
	if Mode(9).String() != "mode(9)" {
		t.Errorf("invalid mode = %q", Mode(9).String())
	}
}

func TestDefaultConfigValid(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("DefaultConfig invalid: %v", err)
	}
}

func TestConfigValidateRejects(t *testing.T) {
	bad := []Config{
		{Mode: Stall, GCTHigh: 0, GCTLow: 0, MissHigh: 1, ThrottleRate: 2},
		{Mode: Stall, GCTHigh: 5, GCTLow: 8, MissHigh: 1, ThrottleRate: 2},
		{Mode: Stall, GCTHigh: 5, GCTLow: 3, MissHigh: 0, ThrottleRate: 2},
		{Mode: Stall, GCTHigh: 5, GCTLow: 3, MissHigh: 2, ThrottleRate: 1},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
	// Off mode skips threshold validation entirely.
	if err := (Config{Mode: Off}).Validate(); err != nil {
		t.Errorf("Off config rejected: %v", err)
	}
}

func TestMonitorOffNeverActs(t *testing.T) {
	m := NewMonitor(Config{Mode: Off})
	d := m.Observe(0, 20, 10, true)
	if d.StallDecode || d.FlushDispatch {
		t.Errorf("Off monitor acted: %+v", d)
	}
}

func TestMonitorStallHysteresis(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Mode = Stall
	m := NewMonitor(cfg)

	// Below high watermark: no action.
	if d := m.Observe(0, cfg.GCTHigh-1, 0, true); d.StallDecode {
		t.Error("stalled below high watermark")
	}
	// Reaches high watermark: stall.
	if d := m.Observe(0, cfg.GCTHigh, 0, true); !d.StallDecode {
		t.Error("did not stall at high watermark")
	}
	// Still above low watermark: stays stalled.
	if d := m.Observe(0, cfg.GCTLow, 0, true); !d.StallDecode {
		t.Error("released before dropping below low watermark")
	}
	// Below low watermark: released.
	if d := m.Observe(0, cfg.GCTLow-1, 0, true); d.StallDecode {
		t.Error("still stalled below low watermark")
	}
}

func TestMonitorFlushOncePerEpisode(t *testing.T) {
	cfg := DefaultConfig() // Flush mode
	m := NewMonitor(cfg)

	d := m.Observe(0, cfg.GCTHigh, 2, true)
	if !d.FlushDispatch {
		t.Fatal("no flush at high watermark with outstanding miss")
	}
	// Same episode: no second flush.
	d = m.Observe(0, cfg.GCTHigh, 2, true)
	if d.FlushDispatch {
		t.Error("flushed twice in one episode")
	}
	// Episode ends, new episode flushes again.
	m.Observe(0, cfg.GCTLow-1, 0, true)
	d = m.Observe(0, cfg.GCTHigh, 1, true)
	if !d.FlushDispatch {
		t.Error("no flush in a new episode")
	}
}

func TestMonitorFlushRequiresMiss(t *testing.T) {
	m := NewMonitor(DefaultConfig())
	d := m.Observe(0, DefaultConfig().GCTHigh, 0, true)
	if d.FlushDispatch {
		t.Error("flushed without an outstanding long-latency miss")
	}
	if !d.StallDecode {
		t.Error("did not stall at watermark")
	}
}

func TestMonitorSiblingInactiveDisables(t *testing.T) {
	m := NewMonitor(DefaultConfig())
	d := m.Observe(0, 20, 8, false)
	if d.StallDecode || d.FlushDispatch {
		t.Errorf("balanced with inactive sibling: %+v", d)
	}
	// An in-progress stall episode is dropped when the sibling goes away.
	m.Observe(0, 20, 0, true)
	if !m.Stalled(0) {
		t.Fatal("expected stall")
	}
	m.Observe(0, 20, 0, false)
	if m.Stalled(0) {
		t.Error("stall episode survived sibling deactivation")
	}
}

func TestMonitorMissThrottle(t *testing.T) {
	cfg := DefaultConfig()
	m := NewMonitor(cfg)
	// Low GCT occupancy but many outstanding misses: decode throttled to
	// 1 in ThrottleRate cycles.
	granted := 0
	for i := 0; i < cfg.ThrottleRate*4; i++ {
		d := m.Observe(1, 2, cfg.MissHigh, true)
		if !d.StallDecode {
			granted++
		}
	}
	if granted != 4 {
		t.Errorf("throttled thread granted %d of %d slots, want %d",
			granted, cfg.ThrottleRate*4, 4)
	}
	// Misses cleared: throttle released immediately.
	if d := m.Observe(1, 2, 0, true); d.StallDecode {
		t.Error("throttle persisted after misses cleared")
	}
}

// TestThrottleWindowMatchesStepping proves the countdown geometry
// ThrottleWindow reports predicts exactly which future Observe calls are
// throttle-stall-free: from any reachable countdown state, the k-th next
// Observe (constant inputs, watermark quiet) stalls iff k is not
// congruent to the reported delta modulo the reported period.
func TestThrottleWindowMatchesStepping(t *testing.T) {
	cfg := DefaultConfig()
	for _, misses := range []int{cfg.MissHigh, cfg.MissHigh + 3} {
		m := NewMonitor(cfg)
		for warm := 0; warm < 3*cfg.ThrottleRate; warm++ {
			delta, period, throttled := m.ThrottleWindow(0, misses, true)
			if !throttled {
				t.Fatalf("misses=%d warm=%d: want throttled", misses, warm)
			}
			if period != uint64(cfg.ThrottleRate) {
				t.Fatalf("misses=%d warm=%d: period=%d want %d", misses, warm, period, cfg.ThrottleRate)
			}
			if delta >= period {
				t.Fatalf("misses=%d warm=%d: delta=%d not below period %d", misses, warm, delta, period)
			}
			probe := *m // Monitor state is a value; copying forks the episode
			for k := uint64(0); k < 3*period; k++ {
				d := probe.Observe(0, 1, misses, true)
				free := k%period == delta
				if d.StallDecode == free {
					t.Fatalf("misses=%d warm=%d k=%d: stall=%v, window (delta=%d period=%d) predicts free=%v",
						misses, warm, k, d.StallDecode, delta, period, free)
				}
			}
			m.Observe(0, 1, misses, true)
		}
	}
}

// TestThrottleWindowNotThrottled pins the conditions under which no
// throttle window exists: misses below the threshold, inactive sibling,
// balancing off.
func TestThrottleWindowNotThrottled(t *testing.T) {
	cfg := DefaultConfig()
	m := NewMonitor(cfg)
	if _, _, th := m.ThrottleWindow(0, cfg.MissHigh-1, true); th {
		t.Error("misses below MissHigh: want not throttled")
	}
	if _, _, th := m.ThrottleWindow(0, cfg.MissHigh, false); th {
		t.Error("sibling inactive: want not throttled")
	}
	off := &Monitor{}
	if _, _, th := off.ThrottleWindow(0, 100, true); th {
		t.Error("balancing off: want not throttled")
	}
}

func TestMonitorPerThreadIndependence(t *testing.T) {
	m := NewMonitor(DefaultConfig())
	m.Observe(0, 20, 1, true) // thread 0 stalls
	d := m.Observe(1, 3, 0, true)
	if d.StallDecode {
		t.Error("thread 1 affected by thread 0's stall")
	}
	if !m.Stalled(0) || m.Stalled(1) {
		t.Errorf("Stalled() = (%v,%v), want (true,false)", m.Stalled(0), m.Stalled(1))
	}
}

func TestMonitorReset(t *testing.T) {
	m := NewMonitor(DefaultConfig())
	m.Observe(0, 20, 5, true)
	m.Reset()
	if m.Stalled(0) {
		t.Error("Reset did not clear stall")
	}
}

func TestNewMonitorPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewMonitor accepted invalid config")
		}
	}()
	NewMonitor(Config{Mode: Stall})
}

func TestZeroValueMonitorIsOff(t *testing.T) {
	var m Monitor
	d := m.Observe(0, 20, 20, true)
	if d.StallDecode || d.FlushDispatch {
		t.Errorf("zero-value monitor acted: %+v", d)
	}
}

// TestSkipObserveMatchesStepping proves CanSkip + SkipObserve are
// bit-identical to n successive Observe calls with constant inputs: when
// CanSkip holds, the closed-form advance leaves the monitor in exactly
// the state stepping would, and the stepped calls perform no watermark
// transition or flush.
func TestSkipObserveMatchesStepping(t *testing.T) {
	cfg := DefaultConfig()
	inputs := []struct {
		gct, misses int
		sibling     bool
	}{
		{0, 0, true}, {5, 0, true}, {13, 0, true}, {16, 0, true},
		{16, 3, true}, {16, 8, true}, {5, 8, true}, {13, 6, true},
		{0, 0, false}, {16, 8, false},
	}
	// Prehistories drive the monitor into every episode state (stalled,
	// flushed, mid-throttle) before the skip is attempted.
	prehistories := [][]struct {
		gct, misses int
		sibling     bool
	}{
		nil,
		{{16, 0, true}}, // stalled, no flush
		{{16, 3, true}}, // stalled + flushed
		{{5, 8, true}},  // throttling
		{{5, 8, true}, {5, 8, true}, {5, 8, true}},
		{{16, 8, true}, {5, 8, true}},
	}
	for _, mode := range []Mode{Off, Stall, Flush} {
		cfg := cfg
		cfg.Mode = mode
		for pi, pre := range prehistories {
			for _, in := range inputs {
				for _, n := range []uint64{1, 2, 3, 7, 8, 9, 15, 16, 100, 1000} {
					ref := NewMonitor(cfg)
					ff := NewMonitor(cfg)
					for _, p := range pre {
						ref.Observe(0, p.gct, p.misses, p.sibling)
						ff.Observe(0, p.gct, p.misses, p.sibling)
					}
					if ref.CanSkip(0, in.gct, in.sibling) != ff.CanSkip(0, in.gct, in.sibling) {
						t.Fatal("CanSkip must be deterministic")
					}
					if !ff.CanSkip(0, in.gct, in.sibling) {
						continue
					}
					first := ref.Observe(0, in.gct, in.misses, in.sibling)
					if first.FlushDispatch {
						t.Fatalf("mode=%v pre=%d in=%+v: CanSkip allowed a flush", mode, pi, in)
					}
					for i := uint64(1); i < n; i++ {
						ref.Observe(0, in.gct, in.misses, in.sibling)
					}
					ff.SkipObserve(0, in.misses, in.sibling, n)
					if *ref != *ff {
						t.Fatalf("mode=%v pre=%d in=%+v n=%d: stepped %+v, skipped %+v", mode, pi, in, n, *ref, *ff)
					}
					// Subsequent decisions must agree exactly.
					for i := 0; i < 3*cfg.ThrottleRate; i++ {
						a := ref.Observe(0, in.gct, in.misses, in.sibling)
						b := ff.Observe(0, in.gct, in.misses, in.sibling)
						if a != b {
							t.Fatalf("mode=%v pre=%d in=%+v n=%d: decisions diverged after skip", mode, pi, in, n)
						}
					}
				}
			}
		}
	}
}
