module power5prio

go 1.24
